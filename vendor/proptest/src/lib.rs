//! Offline stand-in for `proptest`.
//!
//! Implements the subset of the proptest 1.x API the test suite uses:
//! `Strategy` with `prop_map`/`prop_filter`/`prop_recursive`/`boxed`,
//! strategies for primitive `any`, integer/float ranges, tuple and
//! `collection::vec` composition, character-class string patterns
//! (`"[a-z]{0,8}"`), the `prop_oneof!`/`proptest!`/`prop_assert!` macros,
//! and `ProptestConfig::with_cases`.
//!
//! Differences from the real crate, deliberate for the offline build:
//! generation is a deterministic function of the test name and case
//! index (stable across runs, no persistence files), and failing cases
//! are *not* shrunk — the panic message carries the case seed instead.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Per-test configuration (subset).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // the real default is 256; 64 keeps the offline suite quick while
        // still exercising the space
        ProptestConfig { cases: 64 }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::TestRng;
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Build a union of equally-weighted alternative strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The property-test entry point: each `fn name(arg in strategy, ...)`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $($crate::proptest!(@one ($cfg); $(#[$meta])* fn $name($($arg in $strat),*) $body);)*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $($crate::proptest!(@one ($crate::ProptestConfig::default()); $(#[$meta])* fn $name($($arg in $strat),*) $body);)*
    };
    (@one ($cfg:expr); $(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases as u64 {
                let mut __rng =
                    $crate::test_runner::TestRng::for_case(stringify!($name), __case);
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                // bind the case index into the panic payload path so a
                // failure names the reproducing seed
                let __guard = $crate::test_runner::CaseGuard::new(stringify!($name), __case);
                { $body }
                __guard.disarm();
            }
        }
    };
}
