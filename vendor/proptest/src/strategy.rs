//! Value-generation strategies.

use std::marker::PhantomData;
use std::ops::Range;
use std::sync::Arc;

use crate::test_runner::TestRng;

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    type Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Rejection-sample until `pred` accepts (bounded; panics if the
    /// predicate is pathologically selective).
    fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, reason, pred }
    }

    /// Recursive data: `self` generates leaves, `recurse` wraps a
    /// strategy for the inner level into one for the outer level.
    /// `desired_size`/`expected_branch_size` are accepted for API
    /// compatibility; depth alone bounds recursion here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let branch = recurse(strat).boxed();
            // leaf-biased so generated trees stay small on average
            strat = Union::weighted(vec![(2, leaf.clone()), (1, branch)]).boxed();
        }
        strat
    }

    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// Object-safe core so strategies can be type-erased.
trait DynStrategy<T> {
    fn dyn_generate(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn dyn_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Type-erased, cheaply clonable strategy.
pub struct BoxedStrategy<T>(Arc<dyn DynStrategy<T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.dyn_generate(rng)
    }
}

pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

pub struct Filter<S, F> {
    inner: S,
    reason: &'static str,
    pred: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row: {}", self.reason)
    }
}

/// Weighted choice between alternative strategies (`prop_oneof!`).
pub struct Union<T> {
    options: Vec<(u32, BoxedStrategy<T>)>,
    total: u32,
}

impl<T> Union<T> {
    pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
        Union::weighted(options.into_iter().map(|s| (1, s)).collect())
    }

    pub fn weighted(options: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        let total = options.iter().map(|(w, _)| *w).sum();
        Union { options, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total as usize) as u32;
        for (w, s) in &self.options {
            if pick < *w {
                return s.generate(rng);
            }
            pick -= w;
        }
        unreachable!("weights exhausted")
    }
}

/// Always yields a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

pub struct Any<A>(PhantomData<A>);

pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;

    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

macro_rules! arb_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            fn arbitrary(rng: &mut TestRng) -> $ty {
                rng.next_u64() as $ty
            }
        }
    )*};
}

arb_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // finite, moderate magnitude: keeps arithmetic-identity and codec
        // roundtrip properties meaningful (no NaN, no overflow-to-inf)
        let mag = rng.next_f64() * 1.0e9;
        let sign = if rng.next_u64() & 1 == 0 { 1.0 } else { -1.0 };
        sign * mag
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // printable ASCII keeps generated names well-formed everywhere
        (b' ' + rng.below(95) as u8) as char
    }
}

macro_rules! range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = rng.next_u64() as u128 % span;
                (self.start as i128 + r as i128) as $ty
            }
        }
    )*};
}

range_strategy!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

/// Character-class patterns like `"[a-z]{0,8}"`: the string itself is a
/// strategy for `String`. Supported syntax: literal characters,
/// `[a-zXY]` classes with ranges, and `{m}` / `{m,n}` repetition
/// suffixes on a class.
impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = self.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            if chars[i] == '[' {
                // parse the class
                let mut set = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i] as u32, chars[i + 2] as u32);
                        assert!(lo <= hi, "inverted range in pattern {self}");
                        for c in lo..=hi {
                            set.push(char::from_u32(c).expect("ascii range"));
                        }
                        i += 3;
                    } else {
                        set.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in pattern {self}");
                i += 1; // consume ']'
                // parse optional {m} / {m,n}
                let (lo, hi) = if i < chars.len() && chars[i] == '{' {
                    let close = chars[i..]
                        .iter()
                        .position(|&c| c == '}')
                        .expect("unterminated repetition") + i;
                    let body: String = chars[i + 1..close].iter().collect();
                    i = close + 1;
                    match body.split_once(',') {
                        Some((m, n)) => (
                            m.trim().parse::<usize>().expect("bad repetition"),
                            n.trim().parse::<usize>().expect("bad repetition"),
                        ),
                        None => {
                            let m = body.trim().parse::<usize>().expect("bad repetition");
                            (m, m)
                        }
                    }
                } else {
                    (1, 1)
                };
                assert!(!set.is_empty(), "empty class in pattern {self}");
                let count = lo + rng.below(hi - lo + 1);
                for _ in 0..count {
                    out.push(set[rng.below(set.len())]);
                }
            } else {
                out.push(chars[i]);
                i += 1;
            }
        }
        out
    }
}

macro_rules! tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

tuple_strategy!(A);
tuple_strategy!(A, B);
tuple_strategy!(A, B, C);
tuple_strategy!(A, B, C, D);
tuple_strategy!(A, B, C, D, E);
tuple_strategy!(A, B, C, D, E, F);
